//! Finished traces: span events, Chrome trace-event export, text tree.

use std::fmt::Write as _;
use std::path::Path;

/// One attribute value on a span. Constructed via `From` impls so the
/// [`span!`](crate::span) macro accepts plain literals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'static str),
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I64(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    /// JSON rendering of the value alone (NaN/inf degrade to `null`).
    fn push_json(&self, out: &mut String) {
        match self {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            AttrValue::F64(_) => out.push_str("null"),
            AttrValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            AttrValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }

    fn render(&self) -> String {
        match self {
            AttrValue::U64(v) => format!("{v}"),
            AttrValue::I64(v) => format!("{v}"),
            AttrValue::F64(v) => format!("{v}"),
            AttrValue::Str(s) => (*s).to_string(),
            AttrValue::Bool(v) => format!("{v}"),
        }
    }
}

/// A closed span: what [`Span`](crate::Span) records on drop.
///
/// Timestamps are nanoseconds relative to the session epoch (the
/// `Trace::collect` entry), `tid` is the logical thread (0 = session
/// thread, ≥1 = `core::par` worker index + 1), `depth` is the nesting
/// level at open time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    pub name: &'static str,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub depth: u32,
    pub tid: u32,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanEvent {
    /// Duration in microseconds.
    pub fn dur_us(&self) -> f64 {
        self.dur_ns as f64 / 1_000.0
    }
}

/// A finished trace: the deterministic list of span events recorded
/// during one [`Trace::collect`] session.
///
/// Events appear in close order for the session thread, with each
/// worker's buffer appended at its spawn-order position by
/// [`adopt`](crate::adopt) — no wall-clock ordering leaks in, so two
/// runs of a deterministic workload produce structurally identical
/// traces (names, counts, nesting; durations of course differ).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub events: Vec<SpanEvent>,
}

impl Trace {
    /// Run `f` inside a trace session and collect the spans it records.
    ///
    /// Opening a session raises the effective level to at least
    /// `Timings` for its duration, so [`timing_span!`](crate::timing_span)
    /// stage spans record even at `BDSM_OBS=off`; fine-grained
    /// [`span!`](crate::span) spans additionally require
    /// `ObsLevel::Spans`. A nested `collect` on the same thread
    /// piggybacks on the outer session and returns an empty trace.
    pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Trace) {
        crate::session_collect(f)
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of events with this name.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Summed duration (µs) of all events with this name.
    pub fn total_us(&self, name: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(SpanEvent::dur_us)
            .sum()
    }

    /// Top-level events (depth 0 on the session thread), in time order.
    pub fn roots(&self) -> Vec<&SpanEvent> {
        let mut roots: Vec<&SpanEvent> = self
            .events
            .iter()
            .filter(|e| e.depth == 0 && e.tid == 0)
            .collect();
        roots.sort_by_key(|e| e.start_ns);
        roots
    }

    /// Summed duration (µs) per top-level span name, in first-start
    /// order — the "stage table" view of the trace.
    pub fn top_level_totals_us(&self) -> Vec<(&'static str, f64)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut totals: Vec<f64> = Vec::new();
        for e in self.roots() {
            match order.iter().position(|n| *n == e.name) {
                Some(i) => totals[i] += e.dur_us(),
                None => {
                    order.push(e.name);
                    totals.push(e.dur_us());
                }
            }
        }
        order.into_iter().zip(totals).collect()
    }

    /// Chrome trace-event JSON (the array form): load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Each span becomes a complete (`"ph":"X"`) event with `ts`/`dur`
    /// in microseconds, `pid` 0, and the logical worker id as `tid`;
    /// attributes ride in `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut sorted: Vec<&SpanEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| (e.tid, e.start_ns, std::cmp::Reverse(e.dur_ns)));
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("[\n");
        for (i, e) in sorted.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"bdsm\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                e.name,
                e.tid,
                e.start_ns as f64 / 1_000.0,
                e.dur_ns as f64 / 1_000.0,
            );
            if !e.attrs.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":");
                    v.push_json(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Write [`Trace::to_chrome_json`] to a file.
    pub fn save_chrome(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Nested text rendering, one line per span, indented by depth.
    ///
    /// Worker-thread spans are tagged `[tN]`. Events are ordered by
    /// (tid, start time) so each thread reads top-to-bottom.
    pub fn render_tree(&self) -> String {
        let mut sorted: Vec<&SpanEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| (e.tid, e.start_ns, std::cmp::Reverse(e.dur_ns)));
        let mut out = String::new();
        for e in sorted {
            for _ in 0..e.depth {
                out.push_str("  ");
            }
            let _ = write!(out, "{} {:.1}us", e.name, e.dur_us());
            if e.tid != 0 {
                let _ = write!(out, " [t{}]", e.tid);
            }
            for (k, v) in &e.attrs {
                let _ = write!(out, " {k}={}", v.render());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        depth: u32,
        tid: u32,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanEvent {
        SpanEvent {
            name,
            start_ns,
            dur_ns,
            depth,
            tid,
            attrs,
        }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                ev("leaf", 100, 4_000, 1, 0, vec![("idx", AttrValue::U64(0))]),
                ev(
                    "stage.a",
                    0,
                    10_000,
                    0,
                    0,
                    vec![("label", AttrValue::Str("x\"y"))],
                ),
                ev(
                    "work",
                    2_000,
                    3_000,
                    1,
                    1,
                    vec![("ok", AttrValue::Bool(true))],
                ),
                ev("stage.a", 12_000, 2_000, 0, 0, vec![]),
                ev(
                    "stage.b",
                    15_000,
                    1_000,
                    0,
                    0,
                    vec![("r", AttrValue::F64(0.5))],
                ),
            ],
        }
    }

    #[test]
    fn totals_counts_roots() {
        let t = sample();
        assert_eq!(t.count("stage.a"), 2);
        assert!((t.total_us("stage.a") - 12.0).abs() < 1e-12);
        let roots: Vec<&str> = t.roots().iter().map(|e| e.name).collect();
        assert_eq!(roots, vec!["stage.a", "stage.a", "stage.b"]);
        let tops = t.top_level_totals_us();
        assert_eq!(tops.len(), 2);
        assert_eq!(tops[0].0, "stage.a");
        assert!((tops[0].1 - 12.0).abs() < 1e-12);
        assert!((tops[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_json_shape() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":10.000"));
        // String attr escaping.
        assert!(json.contains("\"label\":\"x\\\"y\""));
        assert!(json.contains("\"ok\":true"));
        // Events sorted by (tid, start): worker event last.
        let worker_pos = json.find("\"tid\":1").unwrap();
        let stage_pos = json.rfind("stage.b").unwrap();
        assert!(worker_pos > stage_pos);
        // Every event object present.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 5);
    }

    #[test]
    fn tree_render_indents_and_tags() {
        let txt = sample().render_tree();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("stage.a 10.0us"));
        assert!(lines[1].starts_with("  leaf"));
        assert!(lines[4].contains("[t1]"));
        assert!(lines[4].contains("ok=true"));
    }
}
