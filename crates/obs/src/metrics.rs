//! Metrics: atomic counters/gauges, fixed-bucket latency histograms,
//! cache statistics, and the process-global registry.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic event counter. All operations are relaxed atomics; callers
/// gate recording on [`crate::enabled`] themselves when the increment
/// sits on a hot path.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Upper bounds (µs, inclusive) of the fixed latency buckets; a final
/// overflow bucket catches everything above the last bound. Roughly
/// log-spaced from 1 µs to 10 s — wide enough for a warm cache hit and
/// a cold n = 10⁴ factorization in the same histogram.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 15] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 100_000, 10_000_000,
];

const NUM_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Fixed-bucket latency histogram (microseconds). Lock-free recording,
/// quantiles read from cumulative bucket counts (resolution = the
/// bucket bound, which is plenty for p50/p95/p99 dashboards).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub const fn new() -> Histogram {
        Histogram {
            counts: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum_us: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record_us(&self, us: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` ∈ [0, 1].
    /// Samples in the overflow bucket report the last finite bound.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= target {
                let bound_idx = i.min(LATENCY_BUCKET_BOUNDS_US.len() - 1);
                return LATENCY_BUCKET_BOUNDS_US[bound_idx] as f64;
            }
        }
        *LATENCY_BUCKET_BOUNDS_US.last().unwrap() as f64
    }

    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum_us.store(0, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_us: self.sum_us(),
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            buckets: LATENCY_BUCKET_BOUNDS_US
                .iter()
                .copied()
                .zip(self.counts.iter().map(|c| c.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_us: u64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    /// `(bucket_upper_bound_us, count)` pairs; the overflow bucket
    /// (everything above the last bound) is omitted from this list but
    /// included in `count`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// JSON object fragment (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"buckets_us\": [",
            self.count, self.sum_us, self.p50_us, self.p95_us, self.p99_us
        );
        for (i, (bound, count)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{bound}, {count}]");
        }
        out.push_str("]}");
        out
    }
}

/// Hit/miss/insert/evict accounting for a keyed cache, embeddable per
/// cache instance (e.g. one per `RomServer`).
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: Counter,
    pub misses: Counter,
    pub inserts: Counter,
    /// Entries displaced by a bounded cache to make room; zero for an
    /// unbounded cache, so `inserts - evictions` is the live entry count.
    pub evictions: Counter,
}

impl CacheStats {
    pub const fn new() -> CacheStats {
        CacheStats {
            hits: Counter::new(),
            misses: Counter::new(),
            inserts: Counter::new(),
            evictions: Counter::new(),
        }
    }

    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
        }
    }

    pub fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.inserts.reset();
        self.evictions.reset();
    }
}

/// Point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

impl CacheStatsSnapshot {
    /// Total lookups observed.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over total lookups; 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let q = self.queries();
        if q == 0 {
            0.0
        } else {
            self.hits as f64 / q as f64
        }
    }
}

/// The process-global registry of pipeline counters and gauges.
///
/// Recording is gated by the caller on `enabled(ObsLevel::Timings)`, so
/// at `BDSM_OBS=off` the registry stays untouched (and reads as zero).
#[derive(Debug)]
pub struct Metrics {
    /// Sparse LU numeric factorizations completed.
    pub lu_factorizations: Counter,
    /// Supernode panels packed by the blocked numeric kernel.
    pub lu_supernode_panels: Counter,
    /// MGS re-orthogonalization passes run while merging Krylov candidates.
    pub mgs_reorth_passes: Counter,
    /// Candidate panels absorbed by the blocked orthogonalization kernel
    /// (each = two block-projection passes plus an intra-panel sweep).
    pub ortho_panel_merges: Counter,
    /// Nonzeros (L + U) of the most recent sparse LU factorization.
    pub factor_nnz: Gauge,
    /// Basis column count of the most recent reduction merge.
    pub basis_columns: Gauge,
    /// Peak ready-queue occupancy of the most recent pipelined fan-out
    /// (the factor queue): produced-but-not-yet-consumed items.
    pub factor_queue_peak: Gauge,
}

static METRICS: Metrics = Metrics {
    lu_factorizations: Counter::new(),
    lu_supernode_panels: Counter::new(),
    mgs_reorth_passes: Counter::new(),
    ortho_panel_merges: Counter::new(),
    factor_nnz: Gauge::new(),
    basis_columns: Gauge::new(),
    factor_queue_peak: Gauge::new(),
};

/// The process-global [`Metrics`] registry.
pub fn metrics() -> &'static Metrics {
    &METRICS
}

impl Metrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("lu_factorizations", self.lu_factorizations.get()),
                ("lu_supernode_panels", self.lu_supernode_panels.get()),
                ("mgs_reorth_passes", self.mgs_reorth_passes.get()),
                ("ortho_panel_merges", self.ortho_panel_merges.get()),
            ],
            gauges: vec![
                ("factor_nnz", self.factor_nnz.get()),
                ("basis_columns", self.basis_columns.get()),
                ("factor_queue_peak", self.factor_queue_peak.get()),
            ],
        }
    }

    /// Zero everything; tests and benches call this between phases.
    pub fn reset(&self) {
        self.lu_factorizations.reset();
        self.lu_supernode_panels.reset();
        self.mgs_reorth_passes.reset();
        self.ortho_panel_merges.reset();
        self.factor_nnz.reset();
        self.basis_columns.reset();
        self.factor_queue_peak.reset();
    }
}

/// Point-in-time copy of the global registry, JSON-dumpable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(self.gauges.iter())
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// JSON object fragment: `{"counters": {...}, "gauges": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {v}");
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {v}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(17);
        g.set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0.0);
        // 90 fast (≤10us), 9 medium (≤1000us), 1 slow (≤100000us).
        for _ in 0..90 {
            h.record_us(7);
        }
        for _ in 0..9 {
            h.record_us(800);
        }
        h.record_us(60_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_us(), 90 * 7 + 9 * 800 + 60_000);
        assert_eq!(h.quantile_us(0.50), 10.0);
        assert_eq!(h.quantile_us(0.95), 1_000.0);
        assert_eq!(h.quantile_us(0.99), 1_000.0);
        assert_eq!(h.quantile_us(1.0), 100_000.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_us, 10.0);
        assert!(snap.to_json().contains("\"p95_us\": 1000"));
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new();
        h.record_us(u64::MAX / 2);
        assert_eq!(h.count(), 1);
        // Overflow samples report the last finite bound.
        assert_eq!(h.quantile_us(0.5), 10_000_000.0);
    }

    #[test]
    fn cache_stats_invariants() {
        let s = CacheStats::new();
        s.misses.inc();
        s.inserts.inc();
        for _ in 0..3 {
            s.hits.inc();
        }
        let snap = s.snapshot();
        assert_eq!(snap.queries(), 4);
        assert_eq!(snap.hit_rate(), 0.75);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.evictions, 0);
        // A bounded cache displacing an entry counts it without touching
        // the hit/miss classification of lookups.
        s.evictions.inc();
        let snap = s.snapshot();
        assert_eq!(snap.queries(), 4);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.inserts - snap.evictions, 0);
        let empty = CacheStats::new().snapshot();
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn registry_snapshot_json() {
        // Use local structures (the global registry is shared across tests).
        let m = Metrics {
            lu_factorizations: Counter::new(),
            lu_supernode_panels: Counter::new(),
            mgs_reorth_passes: Counter::new(),
            ortho_panel_merges: Counter::new(),
            factor_nnz: Gauge::new(),
            basis_columns: Gauge::new(),
            factor_queue_peak: Gauge::new(),
        };
        m.lu_factorizations.add(3);
        m.factor_nnz.set(12345);
        let snap = m.snapshot();
        assert_eq!(snap.get("lu_factorizations"), Some(3));
        assert_eq!(snap.get("factor_nnz"), Some(12345));
        assert_eq!(snap.get("nope"), None);
        let json = snap.to_json();
        assert!(json.contains("\"lu_factorizations\": 3"));
        assert!(json.contains("\"gauges\": {"));
        assert!(json.contains("\"factor_nnz\": 12345"));
    }
}
