//! Fault injection for robustness tests.
//!
//! Library code marks interesting failure sites with
//! [`faultpoint!`](crate::faultpoint) — a named no-op costing one relaxed
//! atomic load while nothing is armed. Tests arm a site with [`arm`] /
//! [`arm_nth`] to make it panic, then assert the error surfaces as a
//! typed error (never a panic) across the public API under test. The
//! returned [`FaultGuard`] disarms on drop, so a failing assertion
//! cannot leak an armed fault into later tests.
//!
//! ```
//! use bdsm_obs::fault;
//!
//! fn fallible() -> Result<u32, String> {
//!     std::panic::catch_unwind(|| {
//!         bdsm_obs::faultpoint!("demo.step");
//!         42
//!     })
//!     .map_err(|_| "worker panicked".to_string())
//! }
//!
//! assert_eq!(fallible(), Ok(42));
//! let guard = fault::arm("demo.step");
//! assert!(fallible().is_err());
//! assert_eq!(guard.hits(), 1);
//! drop(guard);
//! assert_eq!(fallible(), Ok(42));
//! ```
//!
//! Faults are process-global: tests arming them must serialize (a shared
//! `Mutex` in the test module is the usual shape).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One armed fault site.
struct FaultSpec {
    /// Panic on the hit that brings the count to this value (1-based).
    fire_at: u64,
    /// Hits observed while armed (shared with the guard).
    hits: Arc<Mutex<u64>>,
}

/// `true` whenever at least one fault is armed — the only thing the
/// disarmed fast path reads.
static ARMED_ANY: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<&'static str, FaultSpec>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, FaultSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Recover the registry lock even when a previous holder panicked — the
/// whole point of the module is inducing panics nearby.
fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<&'static str, FaultSpec>> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Disarms its fault site on drop and exposes the observed hit count.
#[must_use = "the fault stays armed only while the guard lives"]
pub struct FaultGuard {
    name: &'static str,
    hits: Arc<Mutex<u64>>,
}

impl FaultGuard {
    /// How many times the armed site has been hit so far (fired or not).
    pub fn hits(&self) -> u64 {
        *self.hits.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut reg = lock_registry();
        reg.remove(self.name);
        if reg.is_empty() {
            ARMED_ANY.store(false, Ordering::Relaxed);
        }
    }
}

/// Arm `name`: the next [`faultpoint!`](crate::faultpoint) hit panics.
pub fn arm(name: &'static str) -> FaultGuard {
    arm_nth(name, 1)
}

/// Arm `name` to panic on its `n`-th hit (1-based; earlier hits pass
/// through). Re-arming a name replaces the previous spec.
///
/// # Panics
///
/// Panics if `n == 0` — "fire on the zeroth hit" is always a test bug.
pub fn arm_nth(name: &'static str, n: u64) -> FaultGuard {
    assert!(n > 0, "fault {name}: fire count must be 1-based");
    let hits = Arc::new(Mutex::new(0));
    let mut reg = lock_registry();
    reg.insert(
        name,
        FaultSpec {
            fire_at: n,
            hits: Arc::clone(&hits),
        },
    );
    ARMED_ANY.store(true, Ordering::Relaxed);
    drop(reg);
    FaultGuard { name, hits }
}

/// Runtime entry of [`faultpoint!`](crate::faultpoint): panics when the
/// named site is armed and due. One relaxed load when nothing is armed.
#[inline]
pub fn hit(name: &'static str) {
    if !ARMED_ANY.load(Ordering::Relaxed) {
        return;
    }
    hit_slow(name);
}

#[cold]
fn hit_slow(name: &'static str) {
    let fire = {
        let reg = lock_registry();
        match reg.get(name) {
            Some(spec) => {
                let mut h = spec.hits.lock().unwrap_or_else(|p| p.into_inner());
                *h += 1;
                *h == spec.fire_at
            }
            None => false,
        }
        // The guard drops here: the panic below must not poison the
        // registry lock, or disarming would deadlock on recovery.
    };
    if fire {
        panic!("injected fault: {name}");
    }
}

/// Mark a fault-injection site. Free when nothing is armed (one relaxed
/// atomic load); panics when a test armed this name via
/// [`fault::arm`](crate::fault::arm).
#[macro_export]
macro_rules! faultpoint {
    ($name:expr) => {
        $crate::fault::hit($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Faults are process-global; serialize the tests that arm them.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_faultpoint_is_a_noop() {
        let _g = locked();
        crate::faultpoint!("fault.test.noop"); // must not panic
    }

    #[test]
    fn armed_faultpoint_fires_once_and_guard_disarms() {
        let _g = locked();
        let guard = arm("fault.test.once");
        let r = std::panic::catch_unwind(|| crate::faultpoint!("fault.test.once"));
        assert!(r.is_err(), "armed faultpoint must panic");
        assert_eq!(guard.hits(), 1);
        // Fired already: later hits pass through while still armed.
        crate::faultpoint!("fault.test.once");
        assert_eq!(guard.hits(), 2);
        drop(guard);
        crate::faultpoint!("fault.test.once"); // disarmed: no-op again
    }

    #[test]
    fn arm_nth_skips_early_hits() {
        let _g = locked();
        let guard = arm_nth("fault.test.nth", 3);
        crate::faultpoint!("fault.test.nth");
        crate::faultpoint!("fault.test.nth");
        assert_eq!(guard.hits(), 2);
        let r = std::panic::catch_unwind(|| crate::faultpoint!("fault.test.nth"));
        assert!(r.is_err(), "third hit must fire");
        assert_eq!(guard.hits(), 3);
    }

    #[test]
    fn unrelated_names_do_not_fire() {
        let _g = locked();
        let _guard = arm("fault.test.a");
        crate::faultpoint!("fault.test.b"); // different name: no-op
    }

    #[test]
    fn registry_survives_the_panic_it_causes() {
        let _g = locked();
        {
            let _guard = arm("fault.test.poison");
            let _ = std::panic::catch_unwind(|| crate::faultpoint!("fault.test.poison"));
        }
        // Arm/disarm again: the registry lock must not be poisoned.
        let guard = arm("fault.test.poison");
        drop(guard);
        crate::faultpoint!("fault.test.poison");
    }
}
