//! Real-grid workflow: parse a checked-in SPICE fixture netlist, mark
//! the buses a downstream tool needs to keep (the reduction region),
//! reduce everything else with adaptive shifts and exact interfaces,
//! then persist the ROM artifact and serve a frequency batch from the
//! loaded copy. Finishes by checking that every kept boundary voltage
//! matches the full model to ≤ 1e-10 at a matched shift — the exact
//! interface policy makes those voltages ROM coordinates verbatim.
//!
//! Usage: `cargo run --release --example reduce_netlist [netlist.sp]`

use bdsm::core::engine::AdaptiveShiftOpts;
use bdsm::core::transfer::ZLu;
use bdsm::io::{load_netlist, write_netlist};
use bdsm::linalg::Complex64;
use bdsm::rom::{Reducer, RomArtifact, RomServer};
use bdsm::sparse::ShiftedPencil;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../io/fixtures/grid10x10.sp");
    let path = std::env::args().nth(1).unwrap_or_else(|| default.into());

    let net = load_netlist(&path)?;
    println!(
        "{path}: {} buses, {} elements, {} inputs, {} outputs",
        net.num_buses(),
        net.elements().len(),
        net.num_inputs(),
        net.num_outputs(),
    );

    // Round-trip sanity: the writer emits the same network the parser read.
    let text = write_netlist(&net)?;
    println!("writer round-trip: {} lines of SPICE", text.lines().count());

    // Reduction region: keep the left edge of the mesh (bus names ending
    // in `_0`) plus the far-corner port — everything the downstream tool
    // observes — and eliminate the interior. With a non-fixture netlist,
    // fall back to keeping the first three buses.
    let mut kept: Vec<usize> = (0..net.num_buses())
        .filter(|&b| net.bus_name(b).ends_with("_0") || net.bus_name(b) == "n9_9")
        .collect();
    if kept.is_empty() {
        kept = (0..net.num_buses().min(3)).collect();
    }
    println!(
        "keeping {} of {} buses: {:?}{}",
        kept.len(),
        net.num_buses(),
        kept.iter()
            .take(6)
            .map(|&b| net.bus_name(b))
            .collect::<Vec<_>>(),
        if kept.len() > 6 { " …" } else { "" },
    );

    // `keep_buses` derives the external/boundary/internal split from the
    // netlist adjacency and switches the interface policy to Exact so the
    // kept boundary voltages survive reduction bit-for-bit recoverable.
    let reducer = Reducer::builder()
        .keep_buses(&kept)
        .jomega_shifts(&[4.5e2])
        .moments(2)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 10),
            tol: 1e-6,
            max_shifts: 4,
        })
        .sparse()
        .build()?;

    let t0 = Instant::now();
    let rm = reducer.reduce(&net)?;
    println!(
        "reduced {} -> {} states ({} blocks, {} interface states) in {:.2?}",
        rm.full_dim(),
        rm.reduced_dim(),
        rm.projector.num_blocks(),
        rm.interface_states.len(),
        t0.elapsed(),
    );

    // Kept-boundary voltages vs the full model at a matched shift: the
    // interface rows of the basis are unit vectors, so the ROM coordinate
    // IS the boundary voltage — deviation must sit at solver roundoff.
    let s = Complex64::jomega(4.5e2);
    let full_lu = ShiftedPencil::new(&rm.full.g, &rm.full.c)?.factor_complex(s)?;
    let rom_lu = ZLu::factor_shifted(&rm.g, &rm.c, s)?;
    let mut worst = 0.0_f64;
    for input in 0..rm.full.b.ncols() {
        let x_full = full_lu.solve_real(&rm.full.b.col(input))?;
        let x_rom = rom_lu.solve_real(&rm.b.col(input))?;
        let scale = x_full
            .iter()
            .map(|z| z.abs())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for &(row, col) in rm.interface_map() {
            worst = worst.max((x_rom[col] - x_full[row]).abs() / scale);
        }
    }
    println!("worst kept-boundary voltage deviation vs full: {worst:.3e}");
    assert!(worst <= 1e-10, "exact interfaces must hold to 1e-10");

    // Persist: the artifact records the reduction region in provenance.
    let artifact = reducer.reduce_to_artifact(&net)?;
    println!(
        "artifact provenance: strategy {:?}, {} kept buses, certified {}",
        artifact.provenance.partition_strategy,
        artifact.provenance.kept_buses.len(),
        artifact.provenance.certified,
    );
    let rom_path = std::env::temp_dir().join("reduce_netlist_example.rom");
    artifact.save(&rom_path)?;
    let loaded = RomArtifact::load(&rom_path)?;
    std::fs::remove_file(&rom_path).ok();
    assert!(artifact.bitwise_eq(&loaded), "round-trip must be bitwise");

    // Serve a log-spaced frequency batch from the loaded copy.
    let mut server = RomServer::new();
    let id = server.load_artifact(loaded);
    let omegas: Vec<f64> = (0..8)
        .map(|i| 50.0 * (4000.0_f64 / 50.0).powf(i as f64 / 7.0))
        .collect();
    let t = Instant::now();
    let sweep = server.transfer_sweep(id, &omegas)?;
    println!(
        "served {} frequencies in {:.2?} ({} shifts cached); |H11| at {:.0} rad/s = {:.4e}",
        sweep.len(),
        t.elapsed(),
        server.cached_shifts(id)?,
        omegas[0],
        sweep[0][(0, 0)].abs(),
    );
    Ok(())
}
