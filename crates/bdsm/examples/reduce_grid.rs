//! Build once → save → serve: reduce a synthetic RC grid through the v1
//! `Reducer` builder, compare full vs reduced transfer functions, then
//! persist the ROM as a versioned artifact and serve a frequency batch
//! (plus a transient) from the loaded copy.
//!
//! Usage: `cargo run --release --example reduce_grid [rows] [cols] [blocks]`

use bdsm::core::engine::AdaptiveShiftOpts;
use bdsm::core::synth::rc_grid;
use bdsm::core::transfer::{transfer_rel_err, SparseTransferEvaluator};
use bdsm::linalg::Complex64;
use bdsm::rom::{Reducer, RomArtifact, RomServer};
use bdsm::sparse::ShiftedPencil;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().map_or(Ok(20), |a| a.parse())?;
    let cols: usize = args.next().map_or(Ok(25), |a| a.parse())?;
    let blocks: usize = args.next().map_or(Ok(5), |a| a.parse())?;

    let net = rc_grid(rows, cols, 1.0, 1e-3, 2.0);
    println!(
        "grid {rows}x{cols}: {} buses, partitioning into {blocks} blocks",
        net.num_buses()
    );

    // Build: a validated reducer — misconfigurations (zero moments, budget
    // below the block count, …) surface as a typed BuildError here, not as
    // a panic mid-pipeline.
    let reducer = Reducer::builder()
        .blocks(blocks)
        .jomega_shifts(&[5.0e1, 4.5e2, 4.0e3])
        .moments(2)
        .budget(net.num_buses() / 5)
        .sparse()
        .build()?;
    let t0 = Instant::now();
    let rm = reducer.reduce(&net)?;
    println!(
        "reduced {} -> {} states ({} blocks, dims {:?}) via {:?} backend in {:.2?}",
        rm.full_dim(),
        rm.reduced_dim(),
        rm.projector.num_blocks(),
        rm.projector.block_dims(),
        rm.backend,
        t0.elapsed(),
    );

    // Factorization timing: one sparse complex factorization of G + jωC at
    // a mid-band frequency, against the dense complex LU when n is small
    // enough to densify without regret.
    let n = rm.full_dim();
    let s_mid = Complex64::jomega(4.5e2);
    let pencil = ShiftedPencil::new(&rm.full.g, &rm.full.c)?;
    let t = Instant::now();
    let sparse_lu = pencil.factor_complex(s_mid)?;
    let t_sparse_factor = t.elapsed();
    println!(
        "sparse shifted factorization at n={n}: {t_sparse_factor:.2?} \
         (pattern nnz {}, factor nnz {}, {} solve panels)",
        pencil.nnz(),
        sparse_lu.factor_nnz(),
        sparse_lu.solve_panel_count(),
    );
    if n <= 2500 {
        let full = rm.full.to_dense();
        let t = Instant::now();
        let _dense_lu = bdsm::core::transfer::ZLu::factor_shifted(&full.g, &full.c, s_mid)?;
        let t_dense_factor = t.elapsed();
        let speedup = t_dense_factor.as_secs_f64() / t_sparse_factor.as_secs_f64().max(1e-12);
        println!("dense shifted factorization at n={n}: {t_dense_factor:.2?} ({speedup:.1}x slower than sparse)");
    } else {
        println!("dense shifted factorization skipped (n={n} too large to densify)");
    }

    // Save → load → serve: the adaptive+exact headline mode, persisted as
    // a versioned artifact and queried through the concurrent server.
    let adaptive = Reducer::builder()
        .blocks(blocks)
        .jomega_shifts(&[4.5e2])
        .moments(2)
        .adaptive(AdaptiveShiftOpts {
            candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 10),
            tol: 1e-6,
            max_shifts: 4,
        })
        .exact_interfaces()
        .build()?;
    let t0 = Instant::now();
    let artifact = adaptive.reduce_to_artifact(&net)?;
    println!(
        "adaptive+exact-interface: {} -> {} states in {:.2?} \
         ({} greedy residual(s), certified: {}, {} interface buses carried verbatim)",
        artifact.full_dim(),
        artifact.reduced_dim(),
        t0.elapsed(),
        artifact.provenance.residual_trajectory.len(),
        artifact.provenance.certified,
        artifact.interface_map.len(),
    );
    for (round, resid) in artifact.provenance.residual_trajectory.iter().enumerate() {
        println!("  round {round}: worst residual {resid:.2e}");
    }

    let path = std::env::temp_dir().join("reduce_grid_example.rom");
    let t = Instant::now();
    artifact.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    let t_save = t.elapsed();
    let t = Instant::now();
    let loaded = RomArtifact::load(&path)?;
    let t_load = t.elapsed();
    std::fs::remove_file(&path).ok();
    assert!(artifact.bitwise_eq(&loaded), "round-trip must be bitwise");
    println!(
        "artifact: {bytes} bytes on disk, saved in {t_save:.2?}, \
         loaded (bitwise-equal) in {t_load:.2?} [engine {}]",
        loaded.provenance.engine_version
    );

    let mut server = RomServer::new();
    let id = server.load_artifact(loaded);
    let full_ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())?;
    println!(
        "{:>12}  {:>12}  {:>12}  {:>10}",
        "omega", "|H11| full", "|H11| served", "rel err"
    );
    let omegas: Vec<f64> = (0..10)
        .map(|i| 50.0 * (4000.0_f64 / 50.0).powf(i as f64 / 9.0))
        .collect();
    let t = Instant::now();
    let served = server.transfer_sweep(id, &omegas)?;
    let t_serve = t.elapsed();
    for (hs, &omega) in served.iter().zip(&omegas) {
        let hf = full_ev.eval(Complex64::jomega(omega))?;
        println!(
            "{omega:>12.2}  {:>12.6e}  {:>12.6e}  {:>10.2e}",
            hf[(0, 0)].abs(),
            hs[(0, 0)].abs(),
            transfer_rel_err(&hf, hs)
        );
    }
    println!(
        "served {} frequencies in {t_serve:.2?} ({} shifts now cached); \
         repeat batches skip factorization entirely",
        omegas.len(),
        server.cached_shifts(id)?,
    );

    // A served transient: 200 backward-Euler steps of a unit step input.
    let m = server.artifact(id)?.num_inputs();
    let wave: Vec<Vec<f64>> = (0..200).map(|_| vec![1.0; m]).collect();
    let t = Instant::now();
    let ys = server.transient(id, 1e-4, &wave)?;
    println!(
        "served transient: {} steps in {:.2?}, final outputs {:?}",
        ys.len(),
        t.elapsed(),
        ys.last().unwrap(),
    );
    Ok(())
}
