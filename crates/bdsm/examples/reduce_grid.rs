//! Reduce a synthetic RC grid and compare full vs reduced models, with
//! per-backend factorization timings so the sparse speedup is visible —
//! then let the adaptive engine pick its own shifts and preserve the
//! interface buses exactly.
//!
//! Usage: `cargo run --release --example reduce_grid [rows] [cols] [blocks]`

use bdsm::core::engine::{AdaptiveShiftOpts, ShiftStrategy};
use bdsm::core::krylov::KrylovOpts;
use bdsm::core::projector::InterfacePolicy;
use bdsm::core::reduce::{
    reduce_network, reduce_network_with_report, ReductionOpts, SolverBackend,
};
use bdsm::core::synth::rc_grid;
use bdsm::core::transfer::{eval_transfer, transfer_rel_err, SparseTransferEvaluator};
use bdsm::linalg::Complex64;
use bdsm::sparse::ShiftedPencil;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().map_or(Ok(20), |a| a.parse())?;
    let cols: usize = args.next().map_or(Ok(25), |a| a.parse())?;
    let blocks: usize = args.next().map_or(Ok(5), |a| a.parse())?;

    let net = rc_grid(rows, cols, 1.0, 1e-3, 2.0);
    println!(
        "grid {rows}x{cols}: {} buses, partitioning into {blocks} blocks",
        net.num_buses()
    );

    let opts = ReductionOpts {
        num_blocks: blocks,
        krylov: KrylovOpts {
            expansion_points: vec![],
            jomega_points: vec![5.0e1, 4.5e2, 4.0e3],
            moments_per_point: 2,
            deflation_tol: 1e-12,
        },
        rank_tol: 1e-12,
        max_reduced_dim: Some(net.num_buses() / 5),
        backend: SolverBackend::Sparse,
        ..ReductionOpts::default()
    };

    let t0 = Instant::now();
    let rm = reduce_network(&net, &opts)?;
    let t_reduce = t0.elapsed();
    println!(
        "reduced {} -> {} states ({} blocks, dims {:?}) via {:?} backend in {t_reduce:.2?}",
        rm.full_dim(),
        rm.reduced_dim(),
        rm.projector.num_blocks(),
        rm.projector.block_dims(),
        rm.backend,
    );

    // Factorization timing: one sparse complex factorization of G + jωC at
    // a mid-band frequency, against the dense complex LU when n is small
    // enough to densify without regret.
    let n = rm.full_dim();
    let s_mid = Complex64::jomega(4.5e2);
    let pencil = ShiftedPencil::new(&rm.full.g, &rm.full.c)?;
    let t = Instant::now();
    let sparse_lu = pencil.factor_complex(s_mid)?;
    let t_sparse_factor = t.elapsed();
    println!(
        "sparse shifted factorization at n={n}: {t_sparse_factor:.2?} \
         (pattern nnz {}, factor nnz {})",
        pencil.nnz(),
        sparse_lu.factor_nnz(),
    );
    if n <= 2500 {
        let full = rm.full.to_dense();
        let t = Instant::now();
        let _dense_lu = bdsm::core::transfer::ZLu::factor_shifted(&full.g, &full.c, s_mid)?;
        let t_dense_factor = t.elapsed();
        let speedup = t_dense_factor.as_secs_f64() / t_sparse_factor.as_secs_f64().max(1e-12);
        println!("dense shifted factorization at n={n}: {t_dense_factor:.2?} ({speedup:.1}x slower than sparse)");
    } else {
        println!("dense shifted factorization skipped (n={n} too large to densify)");
    }

    let full_ev =
        SparseTransferEvaluator::new(&rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone())?;

    println!(
        "{:>12}  {:>12}  {:>12}  {:>10}",
        "omega", "|H11| full", "|H11| red", "rel err"
    );
    let mut t_full = std::time::Duration::ZERO;
    let mut t_red = std::time::Duration::ZERO;
    for i in 0..10 {
        let omega = 50.0 * (4000.0_f64 / 50.0).powf(i as f64 / 9.0);
        let s = Complex64::jomega(omega);
        let t = Instant::now();
        let hf = full_ev.eval(s)?;
        t_full += t.elapsed();
        let t = Instant::now();
        let hr = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s)?;
        t_red += t.elapsed();
        println!(
            "{omega:>12.2}  {:>12.6e}  {:>12.6e}  {:>10.2e}",
            hf[(0, 0)].abs(),
            hr[(0, 0)].abs(),
            transfer_rel_err(&hf, &hr)
        );
    }
    println!("eval time over 10 freqs: full (sparse) {t_full:.2?}, reduced {t_red:.2?}");

    // Staged engine, adaptive mode: one coarse shift, the greedy loop
    // promotes worst-residual candidates; interface buses stay exact.
    let mut a_opts = opts.clone();
    // Uncapped: exact interface columns are mandatory, and a tight budget
    // would starve the moment directions the certification needs.
    a_opts.max_reduced_dim = None;
    a_opts.krylov.jomega_points = vec![4.5e2];
    a_opts.shift_strategy = ShiftStrategy::Adaptive(AdaptiveShiftOpts {
        candidate_omegas: AdaptiveShiftOpts::log_grid(5.0e1, 4.0e3, 10),
        tol: 1e-6,
        max_shifts: 4,
    });
    a_opts.interface_policy = InterfacePolicy::Exact;
    let t0 = Instant::now();
    let (arm, report) = reduce_network_with_report(&net, &a_opts)?;
    println!(
        "adaptive+exact-interface: {} -> {} states in {:.2?} \
         ({} rounds, certified: {}, {} interface buses carried verbatim)",
        arm.full_dim(),
        arm.reduced_dim(),
        t0.elapsed(),
        report.rounds.len(),
        report.certified,
        arm.interface_map().len(),
    );
    for round in &report.rounds {
        println!(
            "  round: {} shift(s), {} basis cols -> worst residual {:.2e} at omega {:.1}",
            round.points, round.basis_cols, round.worst_residual, round.worst_omega
        );
    }
    Ok(())
}
