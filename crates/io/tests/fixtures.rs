//! The checked-in fixture netlists parse and round-trip — the CI guard
//! that keeps the dialect, the parser, and the writer in agreement.

use bdsm_circuit::ElementKind;
use bdsm_io::{load_netlist, parse_netlist, write_netlist};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn rlc_ladder_parses_and_round_trips() {
    let net = load_netlist(fixture("rlc_ladder.sp")).unwrap();
    assert_eq!(net.num_buses(), 5);
    assert_eq!(net.bus_name(0), "in");
    assert_eq!(net.bus_name(4), "out");
    let (mut r, mut l, mut c) = (0, 0, 0);
    for e in net.elements() {
        match e.kind {
            ElementKind::Resistor(_) => r += 1,
            ElementKind::Inductor(_) => l += 1,
            ElementKind::Capacitor(_) => c += 1,
        }
    }
    assert_eq!((r, l, c), (2, 2, 4));
    // Suffix spot-checks: 2.2kOhm and the continued 0.5meg.
    let ohms: Vec<f64> = net
        .elements()
        .iter()
        .filter_map(|e| match e.kind {
            ElementKind::Resistor(v) => Some(v),
            _ => None,
        })
        .collect();
    assert_eq!(ohms, vec![2.2 * 1e3, 0.5 * 1e6]);
    assert_eq!(net.voltage_sources().len(), 1);
    assert_eq!(net.num_inputs(), 2); // V1 + .port
    assert_eq!(net.num_outputs(), 2); // .port + .probe

    // parse → write → parse is structurally the identity.
    let text = write_netlist(&net).unwrap();
    assert_eq!(parse_netlist(&text).unwrap(), net);
}

#[test]
fn grid10x10_parses_and_round_trips() {
    let net = load_netlist(fixture("grid10x10.sp")).unwrap();
    assert_eq!(net.num_buses(), 100);
    assert_eq!(net.num_inputs(), 2);
    assert_eq!(net.num_outputs(), 2);
    // 2·10·9 mesh resistors + 2 corner loads + 100 grounded capacitors.
    assert_eq!(net.elements().len(), 180 + 2 + 100);
    // The mesh is connected: one block per bus requested is rejected, a
    // 4-block partition covers everything.
    let part = bdsm_circuit::partition_network(&net, 4).unwrap();
    assert_eq!(part.blocks.iter().map(Vec::len).sum::<usize>(), 100);

    let text = write_netlist(&net).unwrap();
    assert_eq!(parse_netlist(&text).unwrap(), net);
}
