* 10x10 RC mesh: unit series resistors, 1e-3 F grounded
* capacitors, corner load resistors, ports at opposite corners.
.bus n0_0
.bus n0_1
.bus n0_2
.bus n0_3
.bus n0_4
.bus n0_5
.bus n0_6
.bus n0_7
.bus n0_8
.bus n0_9
.bus n1_0
.bus n1_1
.bus n1_2
.bus n1_3
.bus n1_4
.bus n1_5
.bus n1_6
.bus n1_7
.bus n1_8
.bus n1_9
.bus n2_0
.bus n2_1
.bus n2_2
.bus n2_3
.bus n2_4
.bus n2_5
.bus n2_6
.bus n2_7
.bus n2_8
.bus n2_9
.bus n3_0
.bus n3_1
.bus n3_2
.bus n3_3
.bus n3_4
.bus n3_5
.bus n3_6
.bus n3_7
.bus n3_8
.bus n3_9
.bus n4_0
.bus n4_1
.bus n4_2
.bus n4_3
.bus n4_4
.bus n4_5
.bus n4_6
.bus n4_7
.bus n4_8
.bus n4_9
.bus n5_0
.bus n5_1
.bus n5_2
.bus n5_3
.bus n5_4
.bus n5_5
.bus n5_6
.bus n5_7
.bus n5_8
.bus n5_9
.bus n6_0
.bus n6_1
.bus n6_2
.bus n6_3
.bus n6_4
.bus n6_5
.bus n6_6
.bus n6_7
.bus n6_8
.bus n6_9
.bus n7_0
.bus n7_1
.bus n7_2
.bus n7_3
.bus n7_4
.bus n7_5
.bus n7_6
.bus n7_7
.bus n7_8
.bus n7_9
.bus n8_0
.bus n8_1
.bus n8_2
.bus n8_3
.bus n8_4
.bus n8_5
.bus n8_6
.bus n8_7
.bus n8_8
.bus n8_9
.bus n9_0
.bus n9_1
.bus n9_2
.bus n9_3
.bus n9_4
.bus n9_5
.bus n9_6
.bus n9_7
.bus n9_8
.bus n9_9
R1 n0_0 n0_1 1
R2 n0_0 n1_0 1
R3 n0_1 n0_2 1
R4 n0_1 n1_1 1
R5 n0_2 n0_3 1
R6 n0_2 n1_2 1
R7 n0_3 n0_4 1
R8 n0_3 n1_3 1
R9 n0_4 n0_5 1
R10 n0_4 n1_4 1
R11 n0_5 n0_6 1
R12 n0_5 n1_5 1
R13 n0_6 n0_7 1
R14 n0_6 n1_6 1
R15 n0_7 n0_8 1
R16 n0_7 n1_7 1
R17 n0_8 n0_9 1
R18 n0_8 n1_8 1
R19 n0_9 n1_9 1
R20 n1_0 n1_1 1
R21 n1_0 n2_0 1
R22 n1_1 n1_2 1
R23 n1_1 n2_1 1
R24 n1_2 n1_3 1
R25 n1_2 n2_2 1
R26 n1_3 n1_4 1
R27 n1_3 n2_3 1
R28 n1_4 n1_5 1
R29 n1_4 n2_4 1
R30 n1_5 n1_6 1
R31 n1_5 n2_5 1
R32 n1_6 n1_7 1
R33 n1_6 n2_6 1
R34 n1_7 n1_8 1
R35 n1_7 n2_7 1
R36 n1_8 n1_9 1
R37 n1_8 n2_8 1
R38 n1_9 n2_9 1
R39 n2_0 n2_1 1
R40 n2_0 n3_0 1
R41 n2_1 n2_2 1
R42 n2_1 n3_1 1
R43 n2_2 n2_3 1
R44 n2_2 n3_2 1
R45 n2_3 n2_4 1
R46 n2_3 n3_3 1
R47 n2_4 n2_5 1
R48 n2_4 n3_4 1
R49 n2_5 n2_6 1
R50 n2_5 n3_5 1
R51 n2_6 n2_7 1
R52 n2_6 n3_6 1
R53 n2_7 n2_8 1
R54 n2_7 n3_7 1
R55 n2_8 n2_9 1
R56 n2_8 n3_8 1
R57 n2_9 n3_9 1
R58 n3_0 n3_1 1
R59 n3_0 n4_0 1
R60 n3_1 n3_2 1
R61 n3_1 n4_1 1
R62 n3_2 n3_3 1
R63 n3_2 n4_2 1
R64 n3_3 n3_4 1
R65 n3_3 n4_3 1
R66 n3_4 n3_5 1
R67 n3_4 n4_4 1
R68 n3_5 n3_6 1
R69 n3_5 n4_5 1
R70 n3_6 n3_7 1
R71 n3_6 n4_6 1
R72 n3_7 n3_8 1
R73 n3_7 n4_7 1
R74 n3_8 n3_9 1
R75 n3_8 n4_8 1
R76 n3_9 n4_9 1
R77 n4_0 n4_1 1
R78 n4_0 n5_0 1
R79 n4_1 n4_2 1
R80 n4_1 n5_1 1
R81 n4_2 n4_3 1
R82 n4_2 n5_2 1
R83 n4_3 n4_4 1
R84 n4_3 n5_3 1
R85 n4_4 n4_5 1
R86 n4_4 n5_4 1
R87 n4_5 n4_6 1
R88 n4_5 n5_5 1
R89 n4_6 n4_7 1
R90 n4_6 n5_6 1
R91 n4_7 n4_8 1
R92 n4_7 n5_7 1
R93 n4_8 n4_9 1
R94 n4_8 n5_8 1
R95 n4_9 n5_9 1
R96 n5_0 n5_1 1
R97 n5_0 n6_0 1
R98 n5_1 n5_2 1
R99 n5_1 n6_1 1
R100 n5_2 n5_3 1
R101 n5_2 n6_2 1
R102 n5_3 n5_4 1
R103 n5_3 n6_3 1
R104 n5_4 n5_5 1
R105 n5_4 n6_4 1
R106 n5_5 n5_6 1
R107 n5_5 n6_5 1
R108 n5_6 n5_7 1
R109 n5_6 n6_6 1
R110 n5_7 n5_8 1
R111 n5_7 n6_7 1
R112 n5_8 n5_9 1
R113 n5_8 n6_8 1
R114 n5_9 n6_9 1
R115 n6_0 n6_1 1
R116 n6_0 n7_0 1
R117 n6_1 n6_2 1
R118 n6_1 n7_1 1
R119 n6_2 n6_3 1
R120 n6_2 n7_2 1
R121 n6_3 n6_4 1
R122 n6_3 n7_3 1
R123 n6_4 n6_5 1
R124 n6_4 n7_4 1
R125 n6_5 n6_6 1
R126 n6_5 n7_5 1
R127 n6_6 n6_7 1
R128 n6_6 n7_6 1
R129 n6_7 n6_8 1
R130 n6_7 n7_7 1
R131 n6_8 n6_9 1
R132 n6_8 n7_8 1
R133 n6_9 n7_9 1
R134 n7_0 n7_1 1
R135 n7_0 n8_0 1
R136 n7_1 n7_2 1
R137 n7_1 n8_1 1
R138 n7_2 n7_3 1
R139 n7_2 n8_2 1
R140 n7_3 n7_4 1
R141 n7_3 n8_3 1
R142 n7_4 n7_5 1
R143 n7_4 n8_4 1
R144 n7_5 n7_6 1
R145 n7_5 n8_5 1
R146 n7_6 n7_7 1
R147 n7_6 n8_6 1
R148 n7_7 n7_8 1
R149 n7_7 n8_7 1
R150 n7_8 n7_9 1
R151 n7_8 n8_8 1
R152 n7_9 n8_9 1
R153 n8_0 n8_1 1
R154 n8_0 n9_0 1
R155 n8_1 n8_2 1
R156 n8_1 n9_1 1
R157 n8_2 n8_3 1
R158 n8_2 n9_2 1
R159 n8_3 n8_4 1
R160 n8_3 n9_3 1
R161 n8_4 n8_5 1
R162 n8_4 n9_4 1
R163 n8_5 n8_6 1
R164 n8_5 n9_5 1
R165 n8_6 n8_7 1
R166 n8_6 n9_6 1
R167 n8_7 n8_8 1
R168 n8_7 n9_7 1
R169 n8_8 n8_9 1
R170 n8_8 n9_8 1
R171 n8_9 n9_9 1
R172 n9_0 n9_1 1
R173 n9_1 n9_2 1
R174 n9_2 n9_3 1
R175 n9_3 n9_4 1
R176 n9_4 n9_5 1
R177 n9_5 n9_6 1
R178 n9_6 n9_7 1
R179 n9_7 n9_8 1
R180 n9_8 n9_9 1
C1 n0_0 0 1m
C2 n0_1 0 1m
C3 n0_2 0 1m
C4 n0_3 0 1m
C5 n0_4 0 1m
C6 n0_5 0 1m
C7 n0_6 0 1m
C8 n0_7 0 1m
C9 n0_8 0 1m
C10 n0_9 0 1m
C11 n1_0 0 1m
C12 n1_1 0 1m
C13 n1_2 0 1m
C14 n1_3 0 1m
C15 n1_4 0 1m
C16 n1_5 0 1m
C17 n1_6 0 1m
C18 n1_7 0 1m
C19 n1_8 0 1m
C20 n1_9 0 1m
C21 n2_0 0 1m
C22 n2_1 0 1m
C23 n2_2 0 1m
C24 n2_3 0 1m
C25 n2_4 0 1m
C26 n2_5 0 1m
C27 n2_6 0 1m
C28 n2_7 0 1m
C29 n2_8 0 1m
C30 n2_9 0 1m
C31 n3_0 0 1m
C32 n3_1 0 1m
C33 n3_2 0 1m
C34 n3_3 0 1m
C35 n3_4 0 1m
C36 n3_5 0 1m
C37 n3_6 0 1m
C38 n3_7 0 1m
C39 n3_8 0 1m
C40 n3_9 0 1m
C41 n4_0 0 1m
C42 n4_1 0 1m
C43 n4_2 0 1m
C44 n4_3 0 1m
C45 n4_4 0 1m
C46 n4_5 0 1m
C47 n4_6 0 1m
C48 n4_7 0 1m
C49 n4_8 0 1m
C50 n4_9 0 1m
C51 n5_0 0 1m
C52 n5_1 0 1m
C53 n5_2 0 1m
C54 n5_3 0 1m
C55 n5_4 0 1m
C56 n5_5 0 1m
C57 n5_6 0 1m
C58 n5_7 0 1m
C59 n5_8 0 1m
C60 n5_9 0 1m
C61 n6_0 0 1m
C62 n6_1 0 1m
C63 n6_2 0 1m
C64 n6_3 0 1m
C65 n6_4 0 1m
C66 n6_5 0 1m
C67 n6_6 0 1m
C68 n6_7 0 1m
C69 n6_8 0 1m
C70 n6_9 0 1m
C71 n7_0 0 1m
C72 n7_1 0 1m
C73 n7_2 0 1m
C74 n7_3 0 1m
C75 n7_4 0 1m
C76 n7_5 0 1m
C77 n7_6 0 1m
C78 n7_7 0 1m
C79 n7_8 0 1m
C80 n7_9 0 1m
C81 n8_0 0 1m
C82 n8_1 0 1m
C83 n8_2 0 1m
C84 n8_3 0 1m
C85 n8_4 0 1m
C86 n8_5 0 1m
C87 n8_6 0 1m
C88 n8_7 0 1m
C89 n8_8 0 1m
C90 n8_9 0 1m
C91 n9_0 0 1m
C92 n9_1 0 1m
C93 n9_2 0 1m
C94 n9_3 0 1m
C95 n9_4 0 1m
C96 n9_5 0 1m
C97 n9_6 0 1m
C98 n9_7 0 1m
C99 n9_8 0 1m
C100 n9_9 0 1m
R181 n0_0 0 2
R182 n9_9 0 2
.port n0_0
.port n9_9
.end
