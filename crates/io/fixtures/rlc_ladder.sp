* Five-section RLC transmission-line ladder.
* Exercises the dialect: comments, continuation lines, scale suffixes
* (including meg vs milli and trailing unit letters), ground aliases,
* a voltage-source input, and explicit .bus declarations.
.bus in
.bus n1
.bus n2
.bus n3
.bus out

R1 in n1 2.2kOhm   ; series resistance
L1 n1 n2 150n
R2 n2 n3
+ 0.5meg           ; continued card: value on its own line
L2 n3 out 2.5u
C1 n1 gnd 100nF
C2 n2 GROUND 1m
C3 n3 0 4.7p
C4 out 0 1f

V1 in 0 1
.port out
.probe n2
.end
anything after .end is ignored, even unparseable junk
