//! SPICE-subset netlist I/O for BDSM power-grid networks.
//!
//! This crate is the ingestion layer that turns the repo from a synthetic
//! benchmark harness into a tool that accepts real grids: a parser from a
//! small, well-defined SPICE dialect to [`bdsm_circuit::Network`], and a
//! writer back to the same dialect so every network the generators (or the
//! parser itself) produce can be checked in, diffed, and re-read.
//!
//! # Dialect
//!
//! One card or directive per logical line; a line whose first
//! non-whitespace character is `+` continues the previous logical line.
//! Lines starting with `*` are comments, and `;` starts a comment anywhere
//! in a line. Everything is case-insensitive except bus-name spelling
//! (the first spelling seen is kept). Supported cards:
//!
//! | card | form | meaning |
//! |------|------|---------|
//! | `R…` | `Rname a b value` | resistor (Ω) |
//! | `C…` | `Cname a b value` | capacitor (F) |
//! | `L…` | `Lname a b value` | inductor (H) |
//! | `I…` | `Iname n+ n- value` | current-source input; one terminal must be ground, the other is the injection bus |
//! | `V…` | `Vname n+ n- value` | voltage-source input between `n+` and `n-` |
//!
//! and directives:
//!
//! | directive | meaning |
//! |-----------|---------|
//! | `.bus name` | declares a bus (dialect extension: pins the bus index order so writer output round-trips index-exactly) |
//! | `.port name` | MOR port at a bus: current injection input + voltage probe output |
//! | `.probe name` | voltage probe output at a bus |
//! | `.end` | end of netlist; anything after is ignored |
//!
//! The ground node is spelled `0`, `gnd`, or `ground` (case-insensitive).
//! Values take SPICE scale suffixes (`t g meg k m u n p f`, with `meg`
//! distinguished from milli-`m`) and ignore trailing unit letters, so
//! `2.2kOhm`, `100nF`, and `1e-3` all parse. Undeclared bus names are
//! interned in first-seen order.
//!
//! Source *amplitudes* are model inputs `u(t)` in BDSM, not structural
//! data: the `I`/`V` card values are validated but not stored, and the
//! writer emits `1` for them. Round-trip equality
//! (`parse → write → parse`) is stated over the structural content —
//! bus names and order, elements, sources, probes — which is exactly
//! [`Network`]'s `PartialEq`.
//!
//! # Example
//!
//! ```
//! use bdsm_io::{parse_netlist, write_netlist};
//!
//! let src = "\
//! * two-bus divider
//! R1 in out 1k
//! C1 out 0 100n ; load
//! .port in
//! .probe out
//! .end";
//! let net = parse_netlist(src)?;
//! assert_eq!(net.num_buses(), 2);
//! assert_eq!(net.bus_name(0), "in");
//!
//! // The writer's output parses back to a structurally equal network.
//! let text = write_netlist(&net)?;
//! assert_eq!(parse_netlist(&text)?, net);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;
mod parse;
mod write;

pub use error::{NetlistError, NetlistErrorKind, WriteError};
pub use parse::{load_netlist, parse_netlist};
pub use write::{save_netlist, write_netlist};
