//! The SPICE-subset parser: text → [`Network`].

use crate::error::{NetlistError, NetlistErrorKind};
use bdsm_circuit::{Network, GROUND};
use std::collections::HashMap;
use std::path::Path;

/// A token with its 1-based source position.
#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    s: &'a str,
    line: usize,
    col: usize,
}

impl Tok<'_> {
    fn err(&self, kind: NetlistErrorKind) -> NetlistError {
        NetlistError::at(self.line, self.col, kind)
    }
}

/// Parses netlist text into a [`Network`].
///
/// See the crate docs for the dialect. Bus names are interned in
/// first-seen order (with `.bus` declarations counting as a sighting), so
/// the same text always produces the same bus indexing.
///
/// # Errors
///
/// A [`NetlistError`] carrying the 1-based line/column of the offending
/// token and a typed [`NetlistErrorKind`].
pub fn parse_netlist(text: &str) -> Result<Network, NetlistError> {
    let mut parser = Parser {
        net: Network::new(),
        bus_of_name: HashMap::new(),
    };
    for card in logical_lines(text) {
        if !parser.card(&card)? {
            break; // .end
        }
    }
    Ok(parser.net)
}

/// Reads and parses a netlist file.
///
/// # Errors
///
/// [`NetlistErrorKind::Io`] (with no position) on filesystem failure, or
/// any [`parse_netlist`] error.
pub fn load_netlist(path: impl AsRef<Path>) -> Result<Network, NetlistError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| NetlistError::at(0, 0, NetlistErrorKind::Io(e)))?;
    parse_netlist(&text)
}

/// Splits text into logical lines of positioned tokens: strips `*` whole-
/// line and `;` rest-of-line comments, splits on whitespace, and folds `+`
/// continuation lines into their predecessor. Columns are 1-based byte
/// offsets into the physical line.
fn logical_lines(text: &str) -> Vec<Vec<Tok<'_>>> {
    let mut out: Vec<Vec<Tok<'_>>> = Vec::new();
    for (li, raw) in text.lines().enumerate() {
        let body = match raw.find(';') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut toks: Vec<Tok<'_>> = Vec::new();
        let mut pos = 0;
        while let Some(rel) = body[pos..].find(|c: char| !c.is_whitespace()) {
            let start = pos + rel;
            let len = body[start..]
                .find(char::is_whitespace)
                .unwrap_or(body.len() - start);
            toks.push(Tok {
                s: &body[start..start + len],
                line: li + 1,
                col: start + 1,
            });
            pos = start + len;
        }
        let Some(first) = toks.first().copied() else {
            continue;
        };
        if first.s.starts_with('*') {
            continue;
        }
        let continuation = first.s.starts_with('+');
        if continuation {
            // Strip the marker; "+R1" and "+ R1" both continue the line.
            if first.s == "+" {
                toks.remove(0);
            } else {
                toks[0] = Tok {
                    s: &first.s[1..],
                    line: first.line,
                    col: first.col + 1,
                };
            }
            if let Some(prev) = out.last_mut() {
                prev.extend(toks);
                continue;
            }
            // A leading continuation with nothing to continue: fall
            // through and let the card dispatcher report it.
        }
        if !toks.is_empty() {
            out.push(toks);
        }
    }
    out
}

/// `true` for the spellings of the ground node.
fn is_ground(name: &str) -> bool {
    name == "0" || name.eq_ignore_ascii_case("gnd") || name.eq_ignore_ascii_case("ground")
}

/// Parses a SPICE value: a float with an optional scale suffix
/// (`t g meg k m u n p f`, case-insensitive, `meg` before milli-`m`) and
/// any trailing unit letters ignored (`2.2kOhm`, `100nF`).
fn parse_value(tok: &Tok<'_>) -> Result<f64, NetlistError> {
    let s = tok.s;
    // Longest numeric prefix that parses as f64.
    let mut split = 0;
    for end in (1..=s.len()).rev() {
        if s.is_char_boundary(end) && s[..end].parse::<f64>().is_ok() {
            split = end;
            break;
        }
    }
    if split == 0 {
        return Err(tok.err(NetlistErrorKind::BadValue(s.to_string())));
    }
    let base: f64 = s[..split].parse().expect("checked above");
    let suffix = &s[split..];
    if !suffix.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(tok.err(NetlistErrorKind::BadValue(s.to_string())));
    }
    let lower = suffix.to_ascii_lowercase();
    let scale = if lower.starts_with("meg") {
        1e6
    } else {
        match lower.chars().next() {
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // Any other letters are a bare unit ("5Ohm") — no scaling.
            Some(_) | None => 1.0,
        }
    };
    let v = base * scale;
    if !v.is_finite() {
        return Err(tok.err(NetlistErrorKind::NonFiniteValue(v)));
    }
    Ok(v)
}

struct Parser {
    net: Network,
    /// Lower-cased bus name → index (the first spelling seen is what
    /// `Network` stores).
    bus_of_name: HashMap<String, usize>,
}

impl Parser {
    /// Interns a node token: ground alias or bus index (creating the bus
    /// on first sight).
    fn node(&mut self, tok: &Tok<'_>) -> usize {
        if is_ground(tok.s) {
            return GROUND;
        }
        let key = tok.s.to_ascii_lowercase();
        match self.bus_of_name.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.net.add_bus(tok.s);
                self.bus_of_name.insert(key, i);
                i
            }
        }
    }

    /// Looks up a bus that must already exist; ground is rejected. Used by
    /// `.port`/`.probe` so a typo cannot silently create a floating bus.
    fn existing_bus(&self, tok: &Tok<'_>, context: &'static str) -> Result<usize, NetlistError> {
        if is_ground(tok.s) {
            return Err(tok.err(NetlistErrorKind::GroundInvalid { context }));
        }
        self.bus_of_name
            .get(&tok.s.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| tok.err(NetlistErrorKind::UnknownBus(tok.s.to_string())))
    }

    /// Handles one logical line. Returns `false` on `.end`.
    fn card(&mut self, toks: &[Tok<'_>]) -> Result<bool, NetlistError> {
        let head = toks[0];
        let fields = |n: usize, names: &[&'static str]| -> Result<(), NetlistError> {
            debug_assert_eq!(names.len(), n);
            if toks.len() < n + 1 {
                return Err(toks[toks.len() - 1].err(NetlistErrorKind::MissingField {
                    card: head.s.to_string(),
                    field: names[toks.len() - 1],
                }));
            }
            if toks.len() > n + 1 {
                return Err(toks[n + 1].err(NetlistErrorKind::ExtraTokens {
                    card: head.s.to_string(),
                }));
            }
            Ok(())
        };
        let circuit =
            |tok: Tok<'_>, e: bdsm_circuit::CircuitError| tok.err(NetlistErrorKind::Circuit(e));

        if let Some(directive) = head.s.strip_prefix('.') {
            match directive.to_ascii_lowercase().as_str() {
                "end" => return Ok(false),
                "bus" => {
                    fields(1, &["bus name"])?;
                    let name = toks[1];
                    if is_ground(name.s) {
                        return Err(name.err(NetlistErrorKind::GroundInvalid {
                            context: "a declared bus",
                        }));
                    }
                    let key = name.s.to_ascii_lowercase();
                    if self.bus_of_name.contains_key(&key) {
                        return Err(name.err(NetlistErrorKind::DuplicateBus(name.s.to_string())));
                    }
                    let i = self.net.add_bus(name.s);
                    self.bus_of_name.insert(key, i);
                }
                "port" => {
                    fields(1, &["bus name"])?;
                    let bus = self.existing_bus(&toks[1], "a port")?;
                    self.net.add_port(bus).map_err(|e| circuit(toks[1], e))?;
                }
                "probe" => {
                    fields(1, &["bus name"])?;
                    let bus = self.existing_bus(&toks[1], "a probe")?;
                    self.net.add_probe(bus).map_err(|e| circuit(toks[1], e))?;
                }
                _ => return Err(head.err(NetlistErrorKind::UnknownDirective(head.s.to_string()))),
            }
            return Ok(true);
        }

        match head.s.chars().next().map(|c| c.to_ascii_uppercase()) {
            Some(kind @ ('R' | 'C' | 'L')) => {
                fields(3, &["first node", "second node", "value"])?;
                let a = self.node(&toks[1]);
                let b = self.node(&toks[2]);
                let v = parse_value(&toks[3])?;
                match kind {
                    'R' => self.net.add_resistor(a, b, v),
                    'C' => self.net.add_capacitor(a, b, v),
                    _ => self.net.add_inductor(a, b, v),
                }
                .map_err(|e| circuit(head, e))?;
            }
            Some('I') => {
                fields(3, &["positive node", "negative node", "value"])?;
                let plus = self.node(&toks[1]);
                let minus = self.node(&toks[2]);
                parse_value(&toks[3])?; // amplitude is a model input, not stored
                let bus = match (plus, minus) {
                    (GROUND, GROUND) => {
                        return Err(head.err(NetlistErrorKind::GroundInvalid {
                            context: "both current-source terminals",
                        }))
                    }
                    (GROUND, b) | (b, GROUND) => b,
                    _ => return Err(head.err(NetlistErrorKind::CurrentSourceBetweenBuses)),
                };
                self.net
                    .add_current_source(bus)
                    .map_err(|e| circuit(head, e))?;
            }
            Some('V') => {
                fields(3, &["positive node", "negative node", "value"])?;
                let plus = self.node(&toks[1]);
                let minus = self.node(&toks[2]);
                parse_value(&toks[3])?; // amplitude is a model input, not stored
                self.net
                    .add_voltage_source(plus, minus)
                    .map_err(|e| circuit(head, e))?;
            }
            _ => return Err(head.err(NetlistErrorKind::UnknownCard(head.s.to_string()))),
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdsm_circuit::ElementKind;

    #[test]
    fn parses_cards_comments_and_continuations() {
        let net = parse_netlist(
            "* title comment\n\
             R1 a b 1k ; series\n\
             C1 b\n\
             + 0 100n\n\
             L1 b c 2.5u\n\
             V1 c 0 1\n\
             .port a\n\
             .probe b\n\
             .end\n\
             R9 never parsed",
        )
        .unwrap();
        assert_eq!(net.num_buses(), 3);
        assert_eq!(
            (net.bus_name(0), net.bus_name(1), net.bus_name(2)),
            ("a", "b", "c")
        );
        let kinds: Vec<ElementKind> = net.elements().iter().map(|e| e.kind).collect();
        // Suffix scaling is a product, so expectations use the same
        // products (100 × 1e-9 differs from the literal 100e-9 in the
        // last bit).
        assert_eq!(
            kinds,
            vec![
                ElementKind::Resistor(1.0 * 1e3),
                ElementKind::Capacitor(100.0 * 1e-9),
                ElementKind::Inductor(2.5 * 1e-6),
            ]
        );
        assert_eq!(net.elements()[1].b, GROUND);
        assert_eq!(net.voltage_sources().len(), 1);
        assert_eq!(net.current_sources().len(), 1); // from .port
        assert_eq!(net.probes().len(), 2); // .port + .probe
    }

    #[test]
    fn value_suffixes_scale() {
        let cases = [
            ("1t", 1e12),
            ("2G", 2e9),
            ("3MEG", 3e6),
            ("4k", 4e3),
            ("5m", 5e-3),
            ("6u", 6e-6),
            ("7n", 7e-9),
            ("8p", 8e-12),
            ("9f", 9e-15),
            ("2.2kOhm", 2.2e3),
            ("100nF", 100e-9),
            ("5Ohm", 5.0),
            ("1e-3", 1e-3),
            ("1e3k", 1e6),
        ];
        for (text, want) in cases {
            let tok = Tok {
                s: text,
                line: 1,
                col: 1,
            };
            let got = parse_value(&tok).unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-12,
                "{text}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn ground_aliases_and_case_insensitive_interning() {
        let net = parse_netlist(
            "R1 N1 gnd 1\n\
             R2 n1 GROUND 2\n\
             C1 n1 0 1u",
        )
        .unwrap();
        // All three cards touch the same bus (first spelling kept) and
        // three distinct ground spellings.
        assert_eq!(net.num_buses(), 1);
        assert_eq!(net.bus_name(0), "N1");
        assert_eq!(net.elements().len(), 3);
        assert!(net.elements().iter().all(|e| e.b == GROUND && e.a == 0));
    }

    #[test]
    fn current_source_injection_node() {
        let net = parse_netlist("R1 a 0 1\nI1 0 a 1m\nI2 a gnd 2m").unwrap();
        assert_eq!(net.current_sources().len(), 2);
        assert!(net.current_sources().iter().all(|s| s.node == 0));
        let err = parse_netlist("R1 a b 1\nI1 a b 1").unwrap_err();
        assert!(matches!(
            err.kind,
            NetlistErrorKind::CurrentSourceBetweenBuses
        ));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse_netlist("R1 a 0 1\nR2 a 0 bogus").unwrap_err();
        assert_eq!((err.line, err.col), (2, 8));
        assert!(matches!(err.kind, NetlistErrorKind::BadValue(_)));

        let err = parse_netlist("Q1 a 0 1").unwrap_err();
        assert_eq!((err.line, err.col), (1, 1));
        assert!(matches!(err.kind, NetlistErrorKind::UnknownCard(_)));

        let err = parse_netlist("R1 a 0 1 extra").unwrap_err();
        assert_eq!((err.line, err.col), (1, 10));
        assert!(matches!(err.kind, NetlistErrorKind::ExtraTokens { .. }));

        let err = parse_netlist("R1 a 0").unwrap_err();
        assert!(matches!(err.kind, NetlistErrorKind::MissingField { .. }));

        let err = parse_netlist(".port nowhere").unwrap_err();
        assert!(matches!(err.kind, NetlistErrorKind::UnknownBus(_)));

        let err = parse_netlist(".bus a\n.bus A").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, NetlistErrorKind::DuplicateBus(_)));

        let err = parse_netlist(".weird x").unwrap_err();
        assert!(matches!(err.kind, NetlistErrorKind::UnknownDirective(_)));

        let err = parse_netlist("R1 a 0 -5").unwrap_err();
        assert!(matches!(
            err.kind,
            NetlistErrorKind::Circuit(bdsm_circuit::CircuitError::NonPositiveValue { .. })
        ));
    }

    #[test]
    fn bus_directive_pins_index_order() {
        let net = parse_netlist(".bus z\n.bus y\nR1 y z 1").unwrap();
        assert_eq!(net.bus_name(0), "z");
        assert_eq!(net.bus_name(1), "y");
        assert_eq!((net.elements()[0].a, net.elements()[0].b), (1, 0));
    }
}
