//! The netlist writer: [`Network`] → text the parser round-trips.

use crate::error::WriteError;
use crate::parse::parse_netlist;
use bdsm_circuit::{ElementKind, Network, GROUND};
use std::fmt::Write as _;
use std::path::Path;

/// Serializes a network to netlist text.
///
/// The output leads with one `.bus` line per bus in index order (pinning
/// the parser's interning order), then elements, sources, and probes in
/// insertion order, and a final `.end`. Values are printed in scientific
/// notation with the shortest digits that reparse to the identical `f64`,
/// so `parse_netlist(&write_netlist(net)?) == *net` structurally.
///
/// Source amplitudes are model inputs, not structural data, so `I`/`V`
/// cards are written with amplitude `1`.
///
/// # Errors
///
/// [`WriteError::UnwritableBusName`] if a bus name is empty, contains
/// whitespace or `;`, starts with a character the parser would
/// misinterpret (`.`, `*`, `+`), or spells the ground node.
pub fn write_netlist(net: &Network) -> Result<String, WriteError> {
    for i in 0..net.num_buses() {
        let name = net.bus_name(i);
        let why = if name.is_empty() {
            Some("name is empty")
        } else if name.contains(char::is_whitespace) {
            Some("name contains whitespace")
        } else if name.contains(';') {
            Some("name contains a comment character")
        } else if name.starts_with('.') || name.starts_with('*') || name.starts_with('+') {
            Some("name starts with a directive/comment/continuation marker")
        } else if name == "0"
            || name.eq_ignore_ascii_case("gnd")
            || name.eq_ignore_ascii_case("ground")
        {
            Some("name spells the ground node")
        } else {
            None
        };
        if let Some(why) = why {
            return Err(WriteError::UnwritableBusName {
                index: i,
                name: name.to_string(),
                why,
            });
        }
    }

    let node = |n: usize| -> &str {
        if n == GROUND {
            "0"
        } else {
            net.bus_name(n)
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "* BDSM netlist: {} buses", net.num_buses());
    for i in 0..net.num_buses() {
        let _ = writeln!(out, ".bus {}", net.bus_name(i));
    }
    let (mut nr, mut nc, mut nl) = (0usize, 0usize, 0usize);
    for e in net.elements() {
        let (card, idx, v) = match e.kind {
            ElementKind::Resistor(v) => {
                nr += 1;
                ('R', nr, v)
            }
            ElementKind::Capacitor(v) => {
                nc += 1;
                ('C', nc, v)
            }
            ElementKind::Inductor(v) => {
                nl += 1;
                ('L', nl, v)
            }
        };
        let _ = writeln!(out, "{card}{idx} {} {} {v:e}", node(e.a), node(e.b));
    }
    for (i, s) in net.current_sources().iter().enumerate() {
        let _ = writeln!(out, "I{} 0 {} 1", i + 1, node(s.node));
    }
    for (i, s) in net.voltage_sources().iter().enumerate() {
        let _ = writeln!(out, "V{} {} {} 1", i + 1, node(s.plus), node(s.minus));
    }
    for p in net.probes() {
        let _ = writeln!(out, ".probe {}", node(p.node));
    }
    out.push_str(".end\n");

    debug_assert_eq!(
        parse_netlist(&out).as_ref().ok(),
        Some(net),
        "writer output must round-trip"
    );
    Ok(out)
}

/// Writes the netlist text to a file.
///
/// # Errors
///
/// Same as [`write_netlist`], plus [`WriteError::Io`].
pub fn save_netlist(net: &Network, path: impl AsRef<Path>) -> Result<(), WriteError> {
    std::fs::write(path, write_netlist(net)?).map_err(WriteError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structurally() {
        let mut net = Network::new();
        let a = net.add_bus("in");
        let b = net.add_bus("mid");
        let c = net.add_bus("out");
        net.add_bus("floating"); // no elements — only `.bus` keeps it
        net.add_resistor(a, b, 1.0e3).unwrap();
        net.add_inductor(b, c, 2.5e-6).unwrap();
        net.add_capacitor(c, GROUND, 0.1 + 0.2).unwrap(); // non-round value
        net.add_voltage_source(a, GROUND).unwrap();
        net.add_port(c).unwrap();
        net.add_probe(b).unwrap();

        let text = write_netlist(&net).unwrap();
        let back = parse_netlist(&text).unwrap();
        assert_eq!(back, net);
        // And the text itself is stable under a second round-trip.
        assert_eq!(write_netlist(&back).unwrap(), text);
    }

    #[test]
    fn current_source_card_names_injection_bus() {
        let mut net = Network::new();
        let a = net.add_bus("a");
        net.add_resistor(a, GROUND, 1.0).unwrap();
        net.add_current_source(a).unwrap();
        let text = write_netlist(&net).unwrap();
        assert!(text.contains("I1 0 a 1"), "{text}");
    }

    #[test]
    fn rejects_unwritable_names() {
        for bad in ["", "two words", "0", "GND", ".dot", "*star", "+plus", "a;b"] {
            let mut net = Network::new();
            net.add_bus(bad);
            assert!(
                matches!(
                    write_netlist(&net),
                    Err(WriteError::UnwritableBusName { .. })
                ),
                "name {bad:?} should be rejected"
            );
        }
    }
}
