//! Typed errors of the netlist reader and writer.

use bdsm_circuit::CircuitError;
use std::fmt;

/// A netlist parse failure, located at a 1-based line and column of the
/// source text (both `0` when no position applies, e.g. I/O failures).
#[derive(Debug)]
pub struct NetlistError {
    /// 1-based source line (0 if not positional).
    pub line: usize,
    /// 1-based source column (0 if not positional).
    pub col: usize,
    /// What went wrong.
    pub kind: NetlistErrorKind,
}

impl NetlistError {
    pub(crate) fn at(line: usize, col: usize, kind: NetlistErrorKind) -> Self {
        NetlistError { line, col, kind }
    }
}

/// The reason a netlist failed to parse.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetlistErrorKind {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The line starts with a letter that is not a supported card type.
    UnknownCard(String),
    /// A `.directive` this dialect does not know.
    UnknownDirective(String),
    /// A card or directive is missing a required field.
    MissingField {
        /// The card or directive being parsed.
        card: String,
        /// The field that was expected next.
        field: &'static str,
    },
    /// A card or directive has tokens after its last field.
    ExtraTokens {
        /// The card or directive being parsed.
        card: String,
    },
    /// A value token did not parse as a number (with optional SPICE scale
    /// suffix).
    BadValue(String),
    /// A value parsed but is NaN or infinite.
    NonFiniteValue(f64),
    /// The ground node was used where a bus is required.
    GroundInvalid {
        /// What was being parsed.
        context: &'static str,
    },
    /// A current source with both terminals on non-ground buses — the
    /// network model only supports injection into a single bus.
    CurrentSourceBetweenBuses,
    /// A directive referenced a bus name that has not been seen.
    UnknownBus(String),
    /// A `.bus` directive re-declared an existing bus name.
    DuplicateBus(String),
    /// Building the network rejected the element (bad value, self-loop,
    /// floating element, …).
    Circuit(CircuitError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "netlist line {}, col {}: {}",
                self.line, self.col, self.kind
            )
        } else {
            write!(f, "netlist: {}", self.kind)
        }
    }
}

impl fmt::Display for NetlistErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistErrorKind::Io(e) => write!(f, "io error: {e}"),
            NetlistErrorKind::UnknownCard(t) => {
                write!(f, "unknown card '{t}' (supported: R, C, L, I, V)")
            }
            NetlistErrorKind::UnknownDirective(t) => write!(
                f,
                "unknown directive '{t}' (supported: .bus, .port, .probe, .end)"
            ),
            NetlistErrorKind::MissingField { card, field } => {
                write!(f, "'{card}' is missing its {field}")
            }
            NetlistErrorKind::ExtraTokens { card } => {
                write!(f, "unexpected tokens after '{card}'")
            }
            NetlistErrorKind::BadValue(t) => write!(f, "'{t}' is not a number"),
            NetlistErrorKind::NonFiniteValue(v) => write!(f, "value {v} is not finite"),
            NetlistErrorKind::GroundInvalid { context } => {
                write!(f, "ground cannot be used as {context}")
            }
            NetlistErrorKind::CurrentSourceBetweenBuses => write!(
                f,
                "current source must have one terminal on ground \
                 (bus-to-bus current sources are not supported)"
            ),
            NetlistErrorKind::UnknownBus(name) => write!(f, "unknown bus '{name}'"),
            NetlistErrorKind::DuplicateBus(name) => {
                write!(f, "bus '{name}' is already declared")
            }
            NetlistErrorKind::Circuit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            NetlistErrorKind::Io(e) => Some(e),
            NetlistErrorKind::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

/// A netlist write failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum WriteError {
    /// A bus name cannot be represented in the netlist text.
    UnwritableBusName {
        /// Bus index.
        index: usize,
        /// The offending name.
        name: String,
        /// Why it cannot be written.
        why: &'static str,
    },
    /// Writing the file failed.
    Io(std::io::Error),
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::UnwritableBusName { index, name, why } => {
                write!(f, "bus {index} name '{name}' cannot be written: {why}")
            }
            WriteError::Io(e) => write!(f, "netlist io error: {e}"),
        }
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WriteError::Io(e) => Some(e),
            _ => None,
        }
    }
}
