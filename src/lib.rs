//! # BDSM — block-diagonal structured model reduction for power grids
//!
//! Façade crate re-exporting the whole pipeline:
//!
//! | stage      | crate          | entry points |
//! |------------|----------------|--------------|
//! | *build*    | [`circuit`]    | [`circuit::Network`], [`circuit::mna::assemble`] |
//! | *partition*| [`circuit`]    | [`circuit::partition::partition_network`] |
//! | *factor*   | [`sparse`]     | [`sparse::CscMatrix`], [`sparse::SparseLu`] (scalar/supernodal [`sparse::NumericKernel`]), [`sparse::ShiftedPencil`] |
//! | *reduce*   | [`core`]       | [`core::reduce::reduce_network`], [`core::reduce::reduce_network_timed`], [`core::reduce::reduce_network_with_report`] — all over the staged [`core::engine::ReductionEngine`] (`Plan → Basis → Project → Certify`; adaptive shifts via [`core::engine::ShiftStrategy`], exact boundaries via [`core::projector::InterfacePolicy`]; parallel substrate: [`core::par`]) |
//! | *evaluate* | [`core`]       | [`core::transfer::TransferEvaluator`], [`core::transfer::SparseTransferEvaluator`] |
//! | *simulate* | [`sim`]        | [`sim::TransientSolver`] |
//! | *measure*  | [`bench`]      | [`bench::time_with_warmup`] |
//!
//! # Examples
//!
//! Reduce a synthetic RC grid and compare transfer functions:
//!
//! ```
//! use bdsm::core::krylov::KrylovOpts;
//! use bdsm::core::reduce::{reduce_network, ReductionOpts, SolverBackend};
//! use bdsm::core::synth::rc_grid;
//! use bdsm::core::transfer::{eval_transfer, transfer_rel_err, SparseTransferEvaluator};
//! use bdsm::linalg::Complex64;
//!
//! // build: an 8×10 RC mesh with ports at opposite corners.
//! let net = rc_grid(8, 10, 1.0, 1e-3, 2.0);
//!
//! // partition + reduce: 4 blocks, moments matched at s = j·500 and j·2000.
//! let opts = ReductionOpts {
//!     num_blocks: 4,
//!     krylov: KrylovOpts {
//!         expansion_points: vec![],
//!         jomega_points: vec![5.0e2, 2.0e3],
//!         moments_per_point: 2,
//!         deflation_tol: 1e-12,
//!     },
//!     rank_tol: 1e-12,
//!     max_reduced_dim: None,
//!     backend: SolverBackend::Sparse,
//!     ..ReductionOpts::default()
//! };
//! let rm = reduce_network(&net, &opts)?;
//! assert!(rm.reduced_dim() < rm.full_dim());
//!
//! // evaluate: full (through the sparse path — the full model is never
//! // densified) vs reduced at a frequency between the expansion points.
//! let s = Complex64::jomega(1.0e3);
//! let full = SparseTransferEvaluator::new(
//!     &rm.full.g, &rm.full.c, rm.full.b.clone(), rm.full.l.clone(),
//! )?.eval(s)?;
//! let reduced = eval_transfer(&rm.g, &rm.c, &rm.b, &rm.l, s)?;
//! assert!(transfer_rel_err(&full, &reduced) < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bdsm_bench as bench;
pub use bdsm_circuit as circuit;
pub use bdsm_core as core;
pub use bdsm_linalg as linalg;
pub use bdsm_sim as sim;
pub use bdsm_sparse as sparse;

/// Most-used types, for glob import.
pub mod prelude {
    pub use bdsm_circuit::{mna::assemble, partition::partition_network, Network, GROUND};
    pub use bdsm_core::engine::{
        AdaptiveShiftOpts, Certificate, EngineReport, ReductionEngine, ShiftStrategy,
    };
    pub use bdsm_core::krylov::KrylovOpts;
    pub use bdsm_core::projector::InterfacePolicy;
    pub use bdsm_core::reduce::{
        reduce_network, reduce_network_timed, reduce_network_with_report, ReducedModel,
        ReductionOpts, SolverBackend, StageTimings,
    };
    pub use bdsm_core::transfer::{
        eval_transfer, transfer_rel_err, SparseTransferEvaluator, TransferEvaluator,
    };
    pub use bdsm_linalg::{Complex64, Matrix};
    pub use bdsm_sim::TransientSolver;
    pub use bdsm_sparse::{
        CscMatrix, FillOrdering, LuWorkspace, NumericKernel, ShiftedPencil, SparseLu,
    };
}
