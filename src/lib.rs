//! # BDSM — block-diagonal structured model reduction for power grids
//!
//! The lifecycle this crate serves is **build once → save → serve**: a
//! block-diagonal ROM is expensive to construct and nearly free to query,
//! so the public API ([`rom`]) treats the reduced model as a persistable,
//! servable artifact:
//!
//! | step | type | what it does |
//! |------|------|--------------|
//! | *build* | [`rom::Reducer`] | typed builder over the staged engine; configuration validated at `build()` time ([`rom::BuildError`]) |
//! | *save/load* | [`rom::RomArtifact`] | versioned binary serialization (magic + format version + checksum), **bitwise-exact** round-trips, JSON debug dump, provenance (engine version, shifts, residual trajectory, and the [`rom::Certificate`]; format v3, v2 files still load with certificate `Unknown`) |
//! | *serve* | [`rom::RomServer`] | thread-safe multi-model handle; caches per-shift factorizations in a sharded-lock, optionally capacity-bounded LRU cache ([`rom::RomServer::with_cache_capacity`]); batched `transfer_sweep` / `port_response` / `transient` queries fan out over [`core::par`], bitwise-deterministic for any `BDSM_THREADS`; validates query inputs ([`rom::QueryError`]), enforces the certified envelope per [`rom::EnvelopePolicy`], and contains panics as [`rom::RomError::Internal`] |
//! | *scale out* | [`cluster::ClusterClient`] | distributed serving over multiple [`cluster::ShardNode`] processes: shard-by-model or shard-by-frequency-band placement ([`cluster::ShardPlan`]), a std-only length-prefixed TCP wire protocol ([`cluster::wire`]), request batching with admission control, retry-with-backoff, and a deterministic ω-order merge — replies **bitwise-equal** to a single local `RomServer` |
//!
//! # Quickstart: build once, save, serve
//!
//! ```
//! use bdsm::rom::{Reducer, RomServer};
//! use bdsm::core::synth::rc_grid;
//!
//! // build: an 8×10 RC mesh, reduced with moments matched at two shifts.
//! let net = rc_grid(8, 10, 1.0, 1e-3, 2.0);
//! let reducer = Reducer::builder()
//!     .blocks(4)
//!     .jomega_shifts(&[5.0e2, 2.0e3])
//!     .moments(2)
//!     .sparse()
//!     .build()?;
//! let artifact = reducer.reduce_to_artifact(&net)?;
//! assert!(artifact.reduced_dim() < artifact.full_dim());
//!
//! // save → load: bitwise round-trip through the versioned binary format.
//! let restored = bdsm::rom::RomArtifact::from_bytes(&artifact.to_bytes())?;
//! assert!(artifact.bitwise_eq(&restored));
//!
//! // serve: batched frequency sweeps over the loaded artifact, with
//! // per-shift factorizations cached across batches.
//! let mut server = RomServer::new();
//! let id = server.load_artifact(restored);
//! let sweep = server.transfer_sweep(id, &[2.0e2, 1.0e3, 3.0e3])?;
//! assert_eq!(sweep.len(), 3);
//! assert_eq!(server.cached_shifts(id)?, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Engine internals
//!
//! The layers underneath remain public — they are the extension surface
//! and the verification oracle the v1 API is checked against:
//!
//! | stage      | crate          | entry points |
//! |------------|----------------|--------------|
//! | *ingest*   | [`io`]         | [`io::load_netlist`] / [`io::save_netlist`] — SPICE-subset netlist parser and structurally round-tripping writer |
//! | *build*    | [`circuit`]    | [`circuit::Network`], [`circuit::mna::assemble`] |
//! | *partition*| [`circuit`]    | [`circuit::partition::partition_network_with`] ([`circuit::PartitionStrategy`]: BFS oracle or interface-aware nested dissection), [`circuit::ReductionSet`] for user-designated reduction regions |
//! | *factor*   | [`sparse`]     | [`sparse::CscMatrix`], [`sparse::SparseLu`] (scalar/supernodal [`sparse::NumericKernel`], panel-blocked multi-RHS solves), [`sparse::ShiftedPencil`] |
//! | *reduce*   | [`core`]       | [`core::reduce::reduce_network`] and friends — the low-level path under [`rom::Reducer`], all over the staged [`core::engine::ReductionEngine`] (`Plan → Basis → Project → Certify`; adaptive shifts via [`core::engine::ShiftStrategy`], exact boundaries via [`core::projector::InterfacePolicy`]; parallel substrate: [`core::par`]) |
//! | *certify*  | [`core`]       | [`core::certify::certify_reduced`] behind [`core::certify::CertifyOpts`] — semidefiniteness + positive-real passivity sampling, Lyapunov/spectral stability, per-band a posteriori error bounds; the resulting [`core::certify::Certificate`] travels in [`core::engine::EngineReport`] and artifact provenance |
//! | *evaluate* | [`core`]       | [`core::transfer::TransferEvaluator`], [`core::transfer::SparseTransferEvaluator`], [`core::transfer::eval_transfer_factored`] |
//! | *simulate* | [`sim`]        | [`sim::TransientSolver`] |
//! | *distribute* | [`cluster`]  | [`cluster::ShardPlan`] placement (by model / by frequency band), [`cluster::ShardNode`] TCP shard processes over [`rom::RomServer`], [`cluster::ClusterClient`] batching/retrying router with typed [`cluster::ClusterError`]s; the [`cluster::wire`] frame codec reuses the artifact conventions (magic, version, FNV-1a checksum, alloc-bounded reads) |
//! | *observe*  | [`obs`]        | [`obs::span!`](span!) / [`obs::timing_span!`](timing_span!) RAII span tracing (Chrome-trace export via [`obs::Trace`]), [`obs::metrics`] counter/gauge/histogram registry, [`rom::RomServer::metrics`], [`obs::faultpoint!`](faultpoint!) fault-injection sites for robustness tests; one-atomic-load no-ops until `BDSM_OBS` (or [`obs::set_level`]) turns them on |
//! | *measure*  | [`bench`]      | [`bench::time_with_warmup`] |
//!
//! The free functions [`core::reduce::reduce_network`],
//! [`core::reduce::reduce_network_timed`],
//! [`core::reduce::reduce_network_with_report`], and
//! [`core::reduce::reduce_network_traced`] are kept stable for
//! callers that want raw engine access (stage recomposition, custom
//! certification grids); new code should start from [`rom::Reducer`].
//!
//! # Observability
//!
//! Set `BDSM_OBS=timings` (stage spans + metrics) or `BDSM_OBS=spans`
//! (adds per-shift / per-block / per-frequency / per-query detail) and
//! every pipeline layer records into the same process: engine stages,
//! sparse LU factorizations, the `core::par` workers, and `RomServer`
//! queries. [`rom::Reducer::reduce_traced`] returns the span trace of a
//! reduction ([`core::engine::EngineReport::trace`]); save it with
//! [`obs::Trace::save_chrome`] and load it in `chrome://tracing` or
//! Perfetto. Recording never changes numerical results — reduced models
//! and served sweeps are bitwise-identical at every level — and with
//! `BDSM_OBS` unset every instrumentation site is a single relaxed
//! atomic load.

pub use bdsm_bench as bench;
pub use bdsm_circuit as circuit;
pub use bdsm_cluster as cluster;
pub use bdsm_core as core;
pub use bdsm_io as io;
pub use bdsm_linalg as linalg;
pub use bdsm_obs as obs;
pub use bdsm_rom as rom;
pub use bdsm_sim as sim;
pub use bdsm_sparse as sparse;
// The façade's doc table links `obs::span!` / `obs::timing_span!` /
// `obs::faultpoint!`; `#[macro_export]` puts the macros at the
// re-exporting crate's root too.
pub use bdsm_obs::{faultpoint, span, timing_span};

/// Most-used types, for glob import.
pub mod prelude {
    pub use bdsm_circuit::{
        mna::assemble,
        partition::{partition_network, partition_network_with, PartitionStrategy},
        Network, ReductionSet, GROUND,
    };
    pub use bdsm_cluster::{
        ClientConfig, ClusterClient, ClusterError, NodeConfig, ShardNode, ShardPlan, WireError,
    };
    pub use bdsm_core::certify::{
        CertStatus, Certificate, CertifyOpts, CheckOutcome, ErrorBand, PassivityCertificate,
        StabilityCertificate,
    };
    pub use bdsm_core::engine::{AdaptiveShiftOpts, EngineReport, ReductionEngine, ShiftStrategy};
    pub use bdsm_core::krylov::KrylovOpts;
    pub use bdsm_core::projector::InterfacePolicy;
    pub use bdsm_core::reduce::{
        reduce_network, reduce_network_timed, reduce_network_traced, reduce_network_with_report,
        ReducedModel, ReductionOpts, SolverBackend, StageTimings,
    };
    pub use bdsm_core::transfer::{
        eval_transfer, eval_transfer_factored, transfer_rel_err, SparseTransferEvaluator,
        TransferEvaluator,
    };
    pub use bdsm_io::{
        load_netlist, parse_netlist, save_netlist, write_netlist, NetlistError, WriteError,
    };
    pub use bdsm_linalg::{Complex64, Matrix};
    pub use bdsm_obs::{MetricsSnapshot, ObsLevel, Trace};
    pub use bdsm_rom::{
        BuildError, EnvelopePolicy, Provenance, QueryError, Reducer, ReducerBuilder, RomArtifact,
        RomError, RomId, RomServer, ServerMetricsSnapshot,
    };
    pub use bdsm_sim::TransientSolver;
    pub use bdsm_sparse::{
        CscMatrix, FillOrdering, LuWorkspace, NumericKernel, ShiftedPencil, SparseLu,
    };
}
